// Command tlstm-trace inspects binary flight-recorder dumps written by
// the runtimes' -trace flag (internal/txtrace format, magic TXTRACE2;
// the older TXTRACE1 is still readable).
//
// Formats:
//
//	-format summary   per-ring abort-chain and CM-defeat summaries (default)
//	-format text      one line per event, decoded
//	-format json      the whole trace as JSON, kinds and codes named
//	-format perfetto  Chrome trace_event JSON: open in Perfetto
//	                  (ui.perfetto.dev) or chrome://tracing
//
// Verbs:
//
//	tlstm-trace check <trace-file>
//
// runs the offline opacity checker (internal/txcheck) and prints a
// per-ring verdict table: transactions checked, aborted-transaction
// snapshots verified, and the sequence-gap / ring-overwrite counts that
// downgrade a verdict from "complete" to "partial". Exit status 1 when
// the trace contains an opacity violation.
//
// Every invocation first validates the dump's structural invariants
// (monotonic per-ring sequences, known kinds, non-decreasing times) and
// fails if they do not hold: this tool and the checker are the
// reference consumers of the format.
//
//	tlstm-stress -seconds 5 -trace /tmp/run.trace
//	tlstm-trace -format perfetto /tmp/run.trace > /tmp/run.json
//	tlstm-trace check /tmp/run.trace
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"tlstm/internal/cm"
	"tlstm/internal/mode"
	"tlstm/internal/txcheck"
	"tlstm/internal/txtrace"
)

func main() {
	os.Exit(run())
}

func run() int {
	format := flag.String("format", "summary", `output format: "summary", "text", "json" or "perfetto"`)
	flag.Parse()
	args := flag.Args()
	checkVerb := len(args) > 0 && args[0] == "check"
	if checkVerb {
		args = args[1:]
	}
	if len(args) != 1 {
		fmt.Fprintln(os.Stderr, "usage: tlstm-trace [-format summary|text|json|perfetto] <trace-file>")
		fmt.Fprintln(os.Stderr, "       tlstm-trace check <trace-file>")
		return 2
	}
	f, err := os.Open(args[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "tlstm-trace: %v\n", err)
		return 1
	}
	defer f.Close()
	tr, err := txtrace.ReadTrace(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tlstm-trace: %v\n", err)
		return 1
	}
	if err := tr.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "tlstm-trace: invalid trace: %v\n", err)
		return 1
	}

	w := os.Stdout
	if checkVerb {
		return runCheck(w, tr)
	}
	switch *format {
	case "summary":
		err = writeSummary(w, tr)
	case "text":
		err = writeText(w, tr)
	case "json":
		err = writeJSON(w, tr)
	case "perfetto":
		err = writePerfetto(w, tr)
	default:
		fmt.Fprintf(os.Stderr, "tlstm-trace: unknown format %q\n", *format)
		return 2
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tlstm-trace: %v\n", err)
		return 1
	}
	return 0
}

// ---------------------------------------------------------------------------
// check
// ---------------------------------------------------------------------------

// runCheck runs the opacity checker and prints its per-ring verdict
// table. Exit status: 0 clean, 1 violated (or checker error).
func runCheck(w io.Writer, tr *txtrace.Trace) int {
	start := time.Now()
	rep, err := txcheck.Check(tr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tlstm-trace: check: %v\n", err)
		return 1
	}
	rep.WriteTable(w, time.Since(start))
	if !rep.Ok() {
		return 1
	}
	return 0
}

// ---------------------------------------------------------------------------
// text
// ---------------------------------------------------------------------------

// pointName names a conflict point for output (cm.Point has no String).
func pointName(p cm.Point) string {
	switch p {
	case cm.PointEncounter:
		return "encounter"
	case cm.PointCommit:
		return "commit"
	default:
		return fmt.Sprintf("point(%d)", int(p))
	}
}

// describe decodes an event's kind-specific fields for human output.
func describe(e txtrace.Event) string {
	switch txtrace.Kind(e.Kind) {
	case txtrace.KindTxBegin:
		return fmt.Sprintf("serial=%d", e.Arg)
	case txtrace.KindAttemptStart:
		return fmt.Sprintf("attempt=%d", e.Arg)
	case txtrace.KindRead, txtrace.KindWrite:
		return fmt.Sprintf("addr=%#x aux=%d", e.Arg, e.Aux)
	case txtrace.KindValidate:
		return fmt.Sprintf("readSet=%d ok=%d", e.Arg, e.Aux)
	case txtrace.KindExtend:
		return fmt.Sprintf("bound=%d ok=%d", e.Arg, e.Aux)
	case txtrace.KindCMDecision:
		dec, point := txtrace.CMAuxDecode(e.Aux)
		return fmt.Sprintf("addr=%#x decision=%s point=%s", e.Arg, cm.Decision(dec), pointName(cm.Point(point)))
	case txtrace.KindAbort:
		return fmt.Sprintf("serial=%d reason=%s", e.Arg, txtrace.AbortReasonString(e.Aux))
	case txtrace.KindCommit:
		return fmt.Sprintf("writeSet=%d", e.Arg)
	case txtrace.KindReclaim:
		return fmt.Sprintf("retireSerial=%d epoch=%d", e.Arg, e.Aux)
	case txtrace.KindRemap:
		return fmt.Sprintf("homeShard=%d prevShard=%d", e.Arg, e.Aux)
	case txtrace.KindCommitWord:
		return fmt.Sprintf("addr=%#x stamp=%d", e.Arg, e.Clock)
	case txtrace.KindModeShift:
		return fmt.Sprintf("mode=%s from=%s", mode.State(e.Arg), mode.State(e.Aux))
	case txtrace.KindRetryPark:
		what := "park"
		if e.Aux == 1 {
			what = "wake"
		}
		return fmt.Sprintf("%s fp=%#x", what, e.Arg)
	default:
		return fmt.Sprintf("arg=%d aux=%d", e.Arg, e.Aux)
	}
}

func writeText(w io.Writer, tr *txtrace.Trace) error {
	for _, rd := range tr.Rings {
		if _, err := fmt.Fprintf(w, "ring %d %q: %d events, %d dropped\n",
			rd.ID, rd.Label, len(rd.Events), rd.Drops); err != nil {
			return err
		}
		for _, e := range rd.Events {
			if _, err := fmt.Fprintf(w, "  [%6d] +%-12d %-12s clock=%-8d %s\n",
				e.Seq, e.Time, txtrace.Kind(e.Kind), e.Clock, describe(e)); err != nil {
				return err
			}
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// json
// ---------------------------------------------------------------------------

type jsonEvent struct {
	Seq   uint64 `json:"seq"`
	Time  int64  `json:"time"`
	Kind  string `json:"kind"`
	Clock uint64 `json:"clock"`
	Arg   uint64 `json:"arg"`
	Aux   uint32 `json:"aux"`
	Desc  string `json:"desc"`
}

type jsonRing struct {
	ID     uint32      `json:"id"`
	Label  string      `json:"label"`
	Drops  uint64      `json:"drops"`
	Events []jsonEvent `json:"events"`
}

func writeJSON(w io.Writer, tr *txtrace.Trace) error {
	out := struct {
		StartUnixNanos int64      `json:"startUnixNanos"`
		Rings          []jsonRing `json:"rings"`
	}{StartUnixNanos: tr.StartUnixNanos}
	for _, rd := range tr.Rings {
		jr := jsonRing{ID: rd.ID, Label: rd.Label, Drops: rd.Drops, Events: make([]jsonEvent, 0, len(rd.Events))}
		for _, e := range rd.Events {
			jr.Events = append(jr.Events, jsonEvent{
				Seq: e.Seq, Time: e.Time, Kind: txtrace.Kind(e.Kind).String(),
				Clock: e.Clock, Arg: e.Arg, Aux: e.Aux, Desc: describe(e),
			})
		}
		out.Rings = append(out.Rings, jr)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ---------------------------------------------------------------------------
// summary
// ---------------------------------------------------------------------------

type ringSummary struct {
	commits, aborts uint64
	byReason        map[uint32]uint64
	// abort chains: runs of consecutive aborts with no commit between
	// them. chainMax is the longest observed; chains counts runs.
	chainMax, chainCur, chains uint64
	// CM tallies: resolutions seen, split by verdict. "Defeats" are
	// AbortSelf verdicts — conflicts this ring lost.
	cmSeen, cmDefeats, cmWins, cmWaits uint64
	// remaps counts affinity placement rebinds (KindRemap).
	remaps uint64
	// Mode-ladder transitions (KindModeShift): fallbacks are shifts to
	// the serialized rung, recoveries shifts back to speculative.
	fallbacks, recoveries uint64
	// Retry cond-var activity (KindRetryPark): parks and doorbell wakes.
	parks, wakes uint64
	// seqGaps counts mid-ring sequence discontinuities: events lost
	// inside the retained window (distinct from Drops, which counts
	// oldest events the ring overwrote).
	seqGaps uint64
}

func summarize(rd txtrace.RingDump) ringSummary {
	s := ringSummary{byReason: map[uint32]uint64{}}
	var prevSeq uint64
	for i, e := range rd.Events {
		if i > 0 && e.Seq != prevSeq+1 {
			s.seqGaps++
		}
		prevSeq = e.Seq
		switch txtrace.Kind(e.Kind) {
		case txtrace.KindAbort:
			s.aborts++
			s.byReason[e.Aux]++
			s.chainCur++
			if s.chainCur == 1 {
				s.chains++
			}
			if s.chainCur > s.chainMax {
				s.chainMax = s.chainCur
			}
		case txtrace.KindCommit:
			s.commits++
			s.chainCur = 0
		case txtrace.KindCMDecision:
			dec, _ := txtrace.CMAuxDecode(e.Aux)
			s.cmSeen++
			switch cm.Decision(dec) {
			case cm.AbortSelf:
				s.cmDefeats++
			case cm.AbortOwner:
				s.cmWins++
			case cm.Wait:
				s.cmWaits++
			}
		case txtrace.KindRemap:
			s.remaps++
		case txtrace.KindModeShift:
			if mode.State(e.Arg) == mode.StateSerial {
				s.fallbacks++
			} else {
				s.recoveries++
			}
		case txtrace.KindRetryPark:
			if e.Aux == 1 {
				s.wakes++
			} else {
				s.parks++
			}
		}
	}
	return s
}

func writeSummary(w io.Writer, tr *txtrace.Trace) error {
	var total ringSummary
	total.byReason = map[uint32]uint64{}
	var totalDrops uint64
	lossyRings := 0
	for _, rd := range tr.Rings {
		s := summarize(rd)
		total.commits += s.commits
		total.aborts += s.aborts
		total.chains += s.chains
		if s.chainMax > total.chainMax {
			total.chainMax = s.chainMax
		}
		total.cmSeen += s.cmSeen
		total.cmDefeats += s.cmDefeats
		total.cmWins += s.cmWins
		total.cmWaits += s.cmWaits
		total.remaps += s.remaps
		total.fallbacks += s.fallbacks
		total.recoveries += s.recoveries
		total.parks += s.parks
		total.wakes += s.wakes
		total.seqGaps += s.seqGaps
		totalDrops += rd.Drops
		for k, v := range s.byReason {
			total.byReason[k] += v
		}
		if _, err := fmt.Fprintf(w, "ring %3d %-24q events=%-7d drops=%-5d commits=%-6d aborts=%-6d chains=%d maxChain=%d remaps=%d cm[seen=%d defeats=%d wins=%d waits=%d]%s%s\n",
			rd.ID, rd.Label, len(rd.Events), rd.Drops, s.commits, s.aborts,
			s.chains, s.chainMax, s.remaps, s.cmSeen, s.cmDefeats, s.cmWins, s.cmWaits,
			modeList(s), reasonList(s.byReason)); err != nil {
			return err
		}
		// Event loss is reported, never silently summarized away: a
		// lossy ring's tallies describe a truncated suffix of the run.
		if rd.Drops > 0 || s.seqGaps > 0 {
			lossyRings++
			if _, err := fmt.Fprintf(w, "  WARNING ring %d lost events: %d oldest overwritten, %d mid-ring sequence gaps — tallies above cover only the retained window\n",
				rd.ID, rd.Drops, s.seqGaps); err != nil {
				return err
			}
		}
	}
	if _, err := fmt.Fprintf(w, "total: rings=%d commits=%d aborts=%d abortChains=%d maxChain=%d remaps=%d cm[seen=%d defeats=%d wins=%d waits=%d]%s%s\n",
		len(tr.Rings), total.commits, total.aborts, total.chains, total.chainMax,
		total.remaps, total.cmSeen, total.cmDefeats, total.cmWins, total.cmWaits,
		modeList(total), reasonList(total.byReason)); err != nil {
		return err
	}
	if totalDrops > 0 || total.seqGaps > 0 {
		if _, err := fmt.Fprintf(w, "total: EVENT LOSS across %d ring(s): %d events overwritten, %d sequence gaps — totals above undercount the run\n",
			lossyRings, totalDrops, total.seqGaps); err != nil {
			return err
		}
	}
	return nil
}

// modeList formats mode-ladder and Retry activity, omitted entirely for
// rings that never shifted or parked.
func modeList(s ringSummary) string {
	if s.fallbacks == 0 && s.recoveries == 0 && s.parks == 0 && s.wakes == 0 {
		return ""
	}
	return fmt.Sprintf(" mode[fallbacks=%d recoveries=%d parks=%d wakes=%d]",
		s.fallbacks, s.recoveries, s.parks, s.wakes)
}

// reasonList formats abort counts by reason, stable order.
func reasonList(m map[uint32]uint64) string {
	if len(m) == 0 {
		return ""
	}
	codes := make([]uint32, 0, len(m))
	for c := range m {
		codes = append(codes, c)
	}
	sort.Slice(codes, func(i, j int) bool { return codes[i] < codes[j] })
	s := " reasons["
	for i, c := range codes {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s=%d", txtrace.AbortReasonString(c), m[c])
	}
	return s + "]"
}

// ---------------------------------------------------------------------------
// perfetto (Chrome trace_event JSON)
// ---------------------------------------------------------------------------

// perfettoEvent is one Chrome trace_event record. Perfetto and
// chrome://tracing both consume the JSON array form; timestamps are
// microseconds.
type perfettoEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  uint32         `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

func writePerfetto(w io.Writer, tr *txtrace.Trace) error {
	var out []perfettoEvent
	us := func(ns int64) float64 { return float64(ns) / 1e3 }
	for _, rd := range tr.Rings {
		out = append(out, perfettoEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: rd.ID,
			Args: map[string]any{"name": rd.Label},
		})
		// Attempts become complete ("X") spans from AttemptStart to the
		// attempt's Abort or Commit; everything else becomes an instant.
		var open *txtrace.Event
		for i := range rd.Events {
			e := rd.Events[i]
			switch txtrace.Kind(e.Kind) {
			case txtrace.KindAttemptStart:
				open = &rd.Events[i]
			case txtrace.KindAbort, txtrace.KindCommit:
				name := "commit"
				args := map[string]any{"clock": e.Clock, "writeSet": e.Arg}
				if txtrace.Kind(e.Kind) == txtrace.KindAbort {
					name = "abort:" + txtrace.AbortReasonString(e.Aux)
					args = map[string]any{"clock": e.Clock, "serial": e.Arg}
				}
				if open != nil {
					out = append(out, perfettoEvent{
						Name: name, Cat: "attempt", Ph: "X",
						Ts: us(open.Time), Dur: us(e.Time - open.Time),
						Pid: 1, Tid: rd.ID, Args: args,
					})
					open = nil
				} else {
					out = append(out, perfettoEvent{
						Name: name, Cat: "attempt", Ph: "i", Ts: us(e.Time),
						Pid: 1, Tid: rd.ID, S: "t", Args: args,
					})
				}
			case txtrace.KindCMDecision:
				dec, point := txtrace.CMAuxDecode(e.Aux)
				out = append(out, perfettoEvent{
					Name: "cm:" + cm.Decision(dec).String(), Cat: "cm", Ph: "i",
					Ts: us(e.Time), Pid: 1, Tid: rd.ID, S: "t",
					Args: map[string]any{"addr": e.Arg, "point": pointName(cm.Point(point))},
				})
			case txtrace.KindExtend:
				out = append(out, perfettoEvent{
					Name: "extend", Cat: "snapshot", Ph: "i", Ts: us(e.Time),
					Pid: 1, Tid: rd.ID, S: "t",
					Args: map[string]any{"bound": e.Arg, "ok": e.Aux},
				})
			case txtrace.KindReclaim:
				out = append(out, perfettoEvent{
					Name: "reclaim", Cat: "reclaim", Ph: "i", Ts: us(e.Time),
					Pid: 1, Tid: rd.ID, S: "t",
					Args: map[string]any{"retireSerial": e.Arg, "epoch": e.Aux},
				})
			case txtrace.KindRemap:
				out = append(out, perfettoEvent{
					Name: "remap", Cat: "placement", Ph: "i", Ts: us(e.Time),
					Pid: 1, Tid: rd.ID, S: "t",
					Args: map[string]any{"homeShard": e.Arg, "prevShard": e.Aux},
				})
			case txtrace.KindModeShift:
				out = append(out, perfettoEvent{
					Name: "mode:" + mode.State(e.Arg).String(), Cat: "mode", Ph: "i",
					Ts: us(e.Time), Pid: 1, Tid: rd.ID, S: "t",
					Args: map[string]any{"from": mode.State(e.Aux).String()},
				})
			case txtrace.KindRetryPark:
				name := "retry:park"
				if e.Aux == 1 {
					name = "retry:wake"
				}
				out = append(out, perfettoEvent{
					Name: name, Cat: "retry", Ph: "i", Ts: us(e.Time),
					Pid: 1, Tid: rd.ID, S: "t",
					Args: map[string]any{"fingerprint": e.Arg},
				})
			}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
