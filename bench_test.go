// Benchmarks regenerating the paper's evaluation (one per figure, §4)
// plus runtime microbenchmarks and the ablations DESIGN.md calls out.
//
// Figure benches report two metrics: wall ns/op (dominated by the
// 1-CPU simulator, not meaningful for speedup) and vunits/tx — virtual
// work units per transaction under the critical-path model of
// DESIGN.md §3, the quantity behind the figures' throughput axes.
// Lower vunits/tx means higher paper-throughput.
package tlstm_test

import (
	"fmt"
	"testing"

	"tlstm"
	"tlstm/internal/core"
	"tlstm/internal/harness"
	"tlstm/internal/rbtree"
	"tlstm/internal/sb7"
	"tlstm/internal/stm"
	"tlstm/internal/tl2"
	"tlstm/internal/tm"
	"tlstm/internal/vacation"
	"tlstm/internal/wtstm"
)

func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

// reportVUnits attaches the virtual-time metric for TLSTM runs.
func reportVUnits(b *testing.B, thr *core.Thread) {
	b.Helper()
	st := thr.Stats()
	if st.TxCommitted > 0 {
		b.ReportMetric(float64(st.VirtualTime)/float64(st.TxCommitted), "vunits/tx")
	}
}

// -----------------------------------------------------------------------------
// Figure 1a (E1): red-black tree lookups, 1 thread, split into tasks.
// -----------------------------------------------------------------------------

func BenchmarkFig1aRBTree(b *testing.B) {
	const treeSize = 1 << 12
	for _, tasks := range []int{1, 2, 4} {
		for _, ops := range []int{8, 64} {
			b.Run(fmt.Sprintf("tasks=%d/ops=%d", tasks, ops), func(b *testing.B) {
				rt := tlstm.New(tlstm.Config{SpecDepth: max(tasks, 1)})
				d := rt.Direct()
				tr := rbtree.New(d)
				for k := int64(0); k < treeSize; k++ {
					tr.Insert(d, k, uint64(k))
				}
				thr := rt.NewThread()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					fns := make([]tlstm.TaskFunc, 0, tasks)
					per := ops / tasks
					for t := 0; t < tasks; t++ {
						lo := t * per
						fns = append(fns, func(tk *tlstm.Task) {
							for j := lo; j < lo+per; j++ {
								tr.Lookup(tk, int64(mix(uint64(i*ops+j))%treeSize))
							}
						})
					}
					if err := thr.Atomic(fns...); err != nil {
						b.Fatal(err)
					}
				}
				thr.Sync()
				b.StopTimer()
				reportVUnits(b, thr)
			})
		}
	}
}

// SwissTM reference point for Figure 1a's denominator.
func BenchmarkFig1aRBTreeBaseline(b *testing.B) {
	const treeSize = 1 << 12
	for _, ops := range []int{8, 64} {
		b.Run(fmt.Sprintf("ops=%d", ops), func(b *testing.B) {
			rt := stm.New()
			d := rt.Direct()
			tr := rbtree.New(d)
			for k := int64(0); k < treeSize; k++ {
				tr.Insert(d, k, uint64(k))
			}
			var st stm.Stats
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rt.Atomic(&st, func(tx *stm.Tx) {
					for j := 0; j < ops; j++ {
						tr.Lookup(tx, int64(mix(uint64(i*ops+j))%treeSize))
					}
				})
			}
			b.StopTimer()
			if st.Commits > 0 {
				b.ReportMetric(float64(st.Work)/float64(st.Commits), "vunits/tx")
			}
		})
	}
}

// -----------------------------------------------------------------------------
// Figure 1b (E2): Vacation, 8 operations per transaction.
// -----------------------------------------------------------------------------

func BenchmarkFig1bVacation(b *testing.B) {
	p := vacation.LowContention()
	p.Relations = 1 << 10
	for _, tasks := range []int{1, 2} {
		b.Run(fmt.Sprintf("tlstm-tasks=%d", tasks), func(b *testing.B) {
			rt := tlstm.New(tlstm.Config{SpecDepth: max(tasks, 1)})
			m := vacation.NewManager(rt.Direct(), 256)
			vacation.Populate(rt.Direct(), m, p)
			thr := rt.NewThread()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := vacation.NewRng(uint64(i + 1))
				ops := make([]vacation.Op, 8)
				for j := range ops {
					ops[j] = p.Generate(r)
				}
				per := 8 / tasks
				fns := make([]tlstm.TaskFunc, 0, tasks)
				for t := 0; t < tasks; t++ {
					part := ops[t*per : (t+1)*per]
					fns = append(fns, func(tk *tlstm.Task) {
						for _, op := range part {
							m.Execute(tk, op)
						}
					})
				}
				if err := thr.Atomic(fns...); err != nil {
					b.Fatal(err)
				}
			}
			thr.Sync()
			b.StopTimer()
			reportVUnits(b, thr)
		})
	}
	b.Run("swisstm", func(b *testing.B) {
		rt := stm.New()
		m := vacation.NewManager(rt.Direct(), 256)
		vacation.Populate(rt.Direct(), m, p)
		var st stm.Stats
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r := vacation.NewRng(uint64(i + 1))
			rt.Atomic(&st, func(tx *stm.Tx) {
				for j := 0; j < 8; j++ {
					m.Execute(tx, p.Generate(r))
				}
			})
		}
		b.StopTimer()
		if st.Commits > 0 {
			b.ReportMetric(float64(st.Work)/float64(st.Commits), "vunits/tx")
		}
	})
}

// -----------------------------------------------------------------------------
// Figure 2a (E3): SB7 long traversals vs read ratio (1 thread, 3 tasks).
// -----------------------------------------------------------------------------

func BenchmarkFig2aSB7ReadRatio(b *testing.B) {
	for _, pctRead := range []int{0, 100} {
		for _, tasks := range []int{1, 3} {
			b.Run(fmt.Sprintf("tasks=%d/read=%d", tasks, pctRead), func(b *testing.B) {
				rt := tlstm.New(tlstm.Config{SpecDepth: max(tasks, 1)})
				bench, err := sb7.Build(rt.Direct(), sb7.Default())
				if err != nil {
					b.Fatal(err)
				}
				thr := rt.NewThread()
				roots, level := bench.SplitRoots(tasks)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					readOnly := i%100 < pctRead
					seed := mix(uint64(i))
					fns := make([]tlstm.TaskFunc, 0, tasks)
					for _, root := range roots {
						root := root
						fns = append(fns, func(tk *tlstm.Task) {
							if readOnly {
								bench.TraverseRead(tk, root, level)
							} else {
								bench.TraverseWrite(tk, root, level, seed)
							}
						})
					}
					if err := thr.Atomic(fns...); err != nil {
						b.Fatal(err)
					}
				}
				thr.Sync()
				b.StopTimer()
				reportVUnits(b, thr)
			})
		}
	}
}

// -----------------------------------------------------------------------------
// Figure 2b (E4): SB7 long traversals, threads × tasks grid (bench subset:
// the four corners that carry the paper's claims).
// -----------------------------------------------------------------------------

func BenchmarkFig2bSB7Scaling(b *testing.B) {
	type cfg struct {
		threads, tasks, pctRead int
	}
	for _, c := range []cfg{
		{1, 3, 90}, {2, 3, 90}, // read-dominated: the +80%/+48% points
		{1, 9, 90}, // 9 tasks, 1 thread: better than 3 tasks
		{2, 9, 90}, // 9 tasks, 2 threads: collapses
		{1, 3, 10}, // write-dominated: below baseline
	} {
		b.Run(fmt.Sprintf("thr=%d/tasks=%d/read=%d", c.threads, c.tasks, c.pctRead), func(b *testing.B) {
			rt := tlstm.New(tlstm.Config{SpecDepth: c.tasks})
			bench, err := sb7.Build(rt.Direct(), sb7.Default())
			if err != nil {
				b.Fatal(err)
			}
			w := harness.Workload{
				Name: "fig2b", Threads: c.threads, TxPerThread: max(b.N/c.threads, 1), OpsPerTx: 1,
				Make: func(thread, idx int) harness.TxSeq {
					seed := mix(uint64(thread)<<32 | uint64(idx))
					readOnly := int(seed%100) < c.pctRead
					roots, level := bench.SplitRoots(c.tasks)
					var seq harness.TxSeq
					for _, root := range roots {
						root := root
						seq = append(seq, func(tx tm.Tx) {
							if readOnly {
								bench.TraverseRead(tx, root, level)
							} else {
								bench.TraverseWrite(tx, root, level, seed)
							}
						})
					}
					return seq
				},
			}
			b.ResetTimer()
			res := harness.RunTLSTM(rt, w)
			b.StopTimer()
			if res.TxCommitted > 0 {
				b.ReportMetric(float64(res.VirtualUnits)/float64(res.TxCommitted), "vunits/tx")
			}
		})
	}
}

// -----------------------------------------------------------------------------
// Runtime microbenchmarks.
// -----------------------------------------------------------------------------

func BenchmarkSTMReadWord(b *testing.B) {
	rt := stm.New()
	a := rt.Direct().Alloc(1)
	b.ResetTimer()
	rt.Atomic(nil, func(tx *stm.Tx) {
		for i := 0; i < b.N; i++ {
			tx.Load(a)
		}
	})
}

func BenchmarkSTMWriteWord(b *testing.B) {
	rt := stm.New()
	base := rt.Direct().Alloc(1 << 12)
	b.ResetTimer()
	rt.Atomic(nil, func(tx *stm.Tx) {
		for i := 0; i < b.N; i++ {
			tx.Store(base+tm.Addr(i&4095), uint64(i))
		}
	})
}

func BenchmarkTaskReadWord(b *testing.B) {
	rt := tlstm.New(tlstm.Config{SpecDepth: 1})
	a := rt.Direct().Alloc(1)
	thr := rt.NewThread()
	b.ResetTimer()
	_ = thr.Atomic(func(tk *tlstm.Task) {
		for i := 0; i < b.N; i++ {
			tk.Load(a)
		}
	})
	thr.Sync()
}

// Speculative forwarding: reading a past task's uncommitted write.
func BenchmarkTaskForwardedRead(b *testing.B) {
	rt := tlstm.New(tlstm.Config{SpecDepth: 2})
	a := rt.Direct().Alloc(1)
	thr := rt.NewThread()
	b.ResetTimer()
	_ = thr.Atomic(
		func(tk *tlstm.Task) { tk.Store(a, 1) },
		func(tk *tlstm.Task) {
			for i := 0; i < b.N; i++ {
				tk.Load(a)
			}
		},
	)
	thr.Sync()
}

func BenchmarkTxCommitReadOnly(b *testing.B) {
	rt := tlstm.New(tlstm.Config{SpecDepth: 2})
	a := rt.Direct().Alloc(1)
	thr := rt.NewThread()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = thr.Atomic(
			func(tk *tlstm.Task) { tk.Load(a) },
			func(tk *tlstm.Task) { tk.Load(a) },
		)
	}
	thr.Sync()
}

func BenchmarkTxCommitWrite(b *testing.B) {
	rt := tlstm.New(tlstm.Config{SpecDepth: 2})
	base := rt.Direct().Alloc(2)
	thr := rt.NewThread()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = thr.Atomic(
			func(tk *tlstm.Task) { tk.Store(base, uint64(i)) },
			func(tk *tlstm.Task) { tk.Store(base+1, uint64(i)) },
		)
	}
	thr.Sync()
}

// -----------------------------------------------------------------------------
// Ablations (DESIGN.md §7).
// -----------------------------------------------------------------------------

// Task-aware CM vs plain two-phase greedy under inter-thread write
// contention (paper §3.2 motivates task-awareness with the deadlock
// example; this measures the throughput side).
func BenchmarkAblationContentionManager(b *testing.B) {
	for _, plain := range []bool{false, true} {
		name := "task-aware"
		if plain {
			name = "plain-greedy"
		}
		b.Run(name, func(b *testing.B) {
			rt := core.New(core.Config{SpecDepth: 2, PlainGreedyCM: plain})
			d := rt.Direct()
			const accounts = 8
			base := d.Alloc(accounts)
			w := harness.Workload{
				Name: name, Threads: 2, TxPerThread: max(b.N/2, 1), OpsPerTx: 2,
				Make: func(thread, idx int) harness.TxSeq {
					s := mix(uint64(thread)<<32 | uint64(idx))
					x := base + tm.Addr(s%accounts)
					y := base + tm.Addr((s>>8)%accounts)
					return harness.TxSeq{
						func(tx tm.Tx) { tx.Store(x, tx.Load(x)+1) },
						func(tx tm.Tx) { tx.Store(y, tx.Load(y)+1) },
					}
				},
			}
			b.ResetTimer()
			res := harness.RunTLSTM(rt, w)
			b.StopTimer()
			if res.TxCommitted > 0 {
				b.ReportMetric(float64(res.VirtualUnits)/float64(res.TxCommitted), "vunits/tx")
				b.ReportMetric(float64(res.TxAborted)/float64(res.TxCommitted), "aborts/tx")
			}
		})
	}
}

// SPECDEPTH sweep on pipelined single-task transactions: deeper windows
// admit more cross-transaction speculation.
func BenchmarkAblationSpecDepth(b *testing.B) {
	for _, depth := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			rt := tlstm.New(tlstm.Config{SpecDepth: depth})
			d := rt.Direct()
			const words = 1 << 10
			base := d.Alloc(words)
			thr := rt.NewThread()
			b.ResetTimer()
			var hs []tlstm.TxHandle
			for i := 0; i < b.N; i++ {
				i := i
				h, err := thr.Submit(func(tk *tlstm.Task) {
					// Disjoint read-mostly work: pipeline-friendly.
					s := mix(uint64(i))
					var acc uint64
					for j := 0; j < 16; j++ {
						acc += tk.Load(base + tm.Addr((s+uint64(j))%words))
					}
					tk.Store(base+tm.Addr(s%words), acc)
				})
				if err != nil {
					b.Fatal(err)
				}
				hs = append(hs, h)
				if len(hs) > 64 {
					hs[0].Wait()
					hs = hs[1:]
				}
			}
			thr.Sync()
			b.StopTimer()
			reportVUnits(b, thr)
		})
	}
}

// Baseline comparison: SwissTM vs TL2 on red-black-tree transactions
// (the SwissTM paper's claim — SwissTM outperforms TL2 on mixed
// workloads thanks to eager W/W detection and timestamp extension —
// should reproduce in work units).
func BenchmarkAblationBaselines(b *testing.B) {
	const treeSize = 1 << 10
	run := func(b *testing.B, atomic func(fn func(tx tm.Tx)), direct tm.Tx, work func() uint64) {
		tr := rbtree.New(direct)
		for k := int64(0); k < treeSize; k++ {
			tr.Insert(direct, k, uint64(k))
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			atomic(func(tx tm.Tx) {
				for j := 0; j < 8; j++ {
					tr.Lookup(tx, int64(mix(uint64(i*8+j))%treeSize))
				}
				k := int64(mix(uint64(i)) % treeSize)
				tr.Insert(tx, k, uint64(i))
			})
		}
		b.StopTimer()
		if b.N > 0 {
			b.ReportMetric(float64(work())/float64(b.N), "vunits/tx")
		}
	}
	b.Run("swisstm", func(b *testing.B) {
		rt := stm.New()
		var st stm.Stats
		run(b, func(fn func(tx tm.Tx)) {
			rt.Atomic(&st, func(tx *stm.Tx) { fn(tx) })
		}, rt.Direct(), func() uint64 { return st.Work })
	})
	b.Run("tl2", func(b *testing.B) {
		rt := tl2.New(20)
		var st tl2.Stats
		run(b, func(fn func(tx tm.Tx)) {
			rt.Atomic(&st, func(tx *tl2.Tx) { fn(tx) })
		}, rt.Direct(), func() uint64 { return st.Work })
	})
}

// The paper's future-work item (§6): redo logging ("the location
// redo-logs have also showed to add substantial overhead") vs in-place
// writes with an undo log. Compares SwissTM (redo) against the
// write-through STM (internal/wtstm) on a write-heavy workload.
func BenchmarkAblationWriteHandling(b *testing.B) {
	const words = 1 << 10
	mkWorkload := func(atomic func(fn func(tx tm.Tx)), direct tm.Tx, work func() uint64) func(b *testing.B) {
		return func(b *testing.B) {
			base := direct.Alloc(words)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				atomic(func(tx tm.Tx) {
					s := mix(uint64(i))
					for j := 0; j < 16; j++ {
						a := base + tm.Addr((s+uint64(j)*37)%words)
						tx.Store(a, tx.Load(a)+1)
					}
				})
			}
			b.StopTimer()
			if b.N > 0 {
				b.ReportMetric(float64(work())/float64(b.N), "vunits/tx")
			}
		}
	}
	b.Run("redo-swisstm", func(b *testing.B) {
		rt := stm.New()
		var st stm.Stats
		mkWorkload(func(fn func(tx tm.Tx)) {
			rt.Atomic(&st, func(tx *stm.Tx) { fn(tx) })
		}, rt.Direct(), func() uint64 { return st.Work })(b)
	})
	b.Run("inplace-writethrough", func(b *testing.B) {
		rt := wtstm.New(20)
		var st wtstm.Stats
		mkWorkload(func(fn func(tx tm.Tx)) {
			rt.Atomic(&st, func(tx *wtstm.Tx) { fn(tx) })
		}, rt.Direct(), func() uint64 { return st.Work })(b)
	})
}

// Lock-table sizing: collisions create false conflicts.
func BenchmarkAblationLockTableBits(b *testing.B) {
	for _, bits := range []int{8, 14, 20} {
		b.Run(fmt.Sprintf("bits=%d", bits), func(b *testing.B) {
			rt := tlstm.New(tlstm.Config{SpecDepth: 2, LockTableBits: bits})
			d := rt.Direct()
			const words = 1 << 12
			base := d.Alloc(words)
			thr := rt.NewThread()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				i := i
				_ = thr.Atomic(
					func(tk *tlstm.Task) {
						s := mix(uint64(i))
						tk.Store(base+tm.Addr(s%words), s)
					},
					func(tk *tlstm.Task) {
						s := mix(uint64(i) + 7)
						_ = tk.Load(base + tm.Addr(s%words))
					},
				)
			}
			thr.Sync()
			b.StopTimer()
			reportVUnits(b, thr)
		})
	}
}
